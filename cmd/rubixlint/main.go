// Command rubixlint runs the project's static-analysis suite (see
// internal/lint: determinism, bitwidth, seedflow, panicpolicy, the
// interprocedural observereffect, addrwidth, and errdiscard analyzers, the
// concurrency gates lockdiscipline, goroutineescape, goroutineleak, and
// waitgroup, and the domain/unit analyzers addrspace, unitflow, and
// hotalloc) over the module.
//
// Usage:
//
//	go run ./cmd/rubixlint ./...
//	go run ./cmd/rubixlint -fix ./internal/dram ./internal/sim
//	go run ./cmd/rubixlint -sarif ./... > lint.sarif
//	go run ./cmd/rubixlint -only addrspace,unitflow ./...
//	go run ./cmd/rubixlint -allow-audit ./...
//
// With no arguments (or "./...") the whole module is checked. The whole
// module is always *loaded* — the interprocedural analyzers need the full
// value-flow graph — and patterns only narrow which packages findings are
// reported for.
//
// Flags:
//
//	-fix          apply the first suggested fix of every finding in place
//	-json         emit findings as a JSON document instead of text
//	-sarif        emit findings as minimal SARIF 2.1.0 instead of text
//	-only names   run only the named analyzers (comma-separated); an
//	              unknown name is a usage error (exit 2)
//	-allow-audit  audit //lint:allow directives instead of reporting
//	              findings: stale guards (the suppressed finding no longer
//	              fires), guards with no justification, and guards naming
//	              unknown analyzers all fail the run
//
// Exit status: 0 when clean, 1 when findings survive the //lint:allow
// annotations (or -fix left unfixable findings, or -allow-audit found bad
// guards), 2 on load, usage, or internal errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"rubix/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rubixlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fix := fs.Bool("fix", false, "apply the first suggested fix of every finding in place")
	asJSON := fs.Bool("json", false, "emit findings as JSON")
	asSARIF := fs.Bool("sarif", false, "emit findings as SARIF 2.1.0")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	audit := fs.Bool("allow-audit", false, "audit //lint:allow directives: fail on stale or unjustified guards")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: rubixlint [-fix] [-json|-sarif] [-only names] [-allow-audit] [packages]\n\nRuns the project invariants suite over the module.\n\nAnalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(stderr, "  %-16s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *asJSON && *asSARIF {
		fmt.Fprintln(stderr, "rubixlint: -json and -sarif are mutually exclusive")
		return 2
	}
	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(stderr, "rubixlint:", err)
		fs.Usage()
		return 2
	}

	root, modulePath, err := lint.FindModule(".")
	if err != nil {
		fmt.Fprintln(stderr, "rubixlint:", err)
		return 2
	}
	pkgs, err := lint.NewLoader(root, modulePath).LoadAll()
	if err != nil {
		fmt.Fprintln(stderr, "rubixlint:", err)
		return 2
	}
	scope, err := patternScope(pkgs, fs.Args(), root, modulePath)
	if err != nil {
		fmt.Fprintln(stderr, "rubixlint:", err)
		return 2
	}

	if *audit {
		findings, err := lint.AuditAllows(pkgs, analyzers, scope)
		if err != nil {
			fmt.Fprintln(stderr, "rubixlint:", err)
			return 2
		}
		for _, f := range findings {
			s := f.String()
			if rel, rerr := filepath.Rel(root, f.Directive.Pos.Filename); rerr == nil {
				s = strings.Replace(s, f.Directive.Pos.Filename, rel, 1)
			}
			fmt.Fprintln(stdout, s)
		}
		if len(findings) > 0 {
			fmt.Fprintf(stderr, "rubixlint: %d allow-audit finding(s)\n", len(findings))
			return 1
		}
		return 0
	}

	diags, err := lint.Run(pkgs, analyzers, scope)
	if err != nil {
		fmt.Fprintln(stderr, "rubixlint:", err)
		return 2
	}

	if *fix {
		fset := pkgs[0].Fset
		contents, applied, unfixed, err := lint.ApplyFixes(fset, diags)
		if err != nil {
			fmt.Fprintln(stderr, "rubixlint:", err)
			return 2
		}
		for file, data := range contents { // key extraction not needed: write each
			if err := os.WriteFile(file, data, 0o644); err != nil {
				fmt.Fprintln(stderr, "rubixlint:", err)
				return 2
			}
		}
		if applied > 0 {
			fmt.Fprintf(stderr, "rubixlint: applied %d fix(es)\n", applied)
		}
		diags = unfixed
	}

	switch {
	case *asJSON:
		if err := writeJSON(stdout, root, diags); err != nil {
			fmt.Fprintln(stderr, "rubixlint:", err)
			return 2
		}
	case *asSARIF:
		if err := writeSARIF(stdout, root, diags); err != nil {
			fmt.Fprintln(stderr, "rubixlint:", err)
			return 2
		}
	default:
		for _, d := range diags {
			if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil {
				d.Pos.Filename = rel
			}
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "rubixlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// selectAnalyzers resolves the -only flag: an empty spec selects the full
// suite, otherwise each comma-separated name must match a registered
// analyzer exactly (a typo silently running zero analyzers would read as a
// clean tree, so unknown names are a usage error).
func selectAnalyzers(spec string) ([]*lint.Analyzer, error) {
	if spec == "" {
		return lint.All(), nil
	}
	var out []*lint.Analyzer
	seen := make(map[string]bool)
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := lint.ByName(name)
		if !ok {
			return nil, fmt.Errorf("-only: unknown analyzer %q", name)
		}
		if !seen[a.Name] {
			seen[a.Name] = true
			out = append(out, a)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-only: no analyzers selected from %q", spec)
	}
	return out, nil
}

// patternScope composes the repository scope policy with the requested
// package patterns. The whole module stays loaded — the value-flow graph
// spans it — and patterns only narrow which packages findings are reported
// for.
func patternScope(pkgs []*lint.Package, patterns []string, root, modulePath string) (lint.Scope, error) {
	base := lint.DefaultScope(modulePath)
	if len(patterns) == 0 {
		return base, nil
	}
	selected := make(map[string]bool)
	all := false
	for _, pat := range patterns {
		prefix, recursive := strings.CutSuffix(pat, "/...")
		if prefix == "." || prefix == "./" || pat == "./..." {
			all = true
			continue
		}
		abs, err := filepath.Abs(strings.TrimSuffix(prefix, "/"))
		if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(root, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("pattern %q is outside the module", pat)
		}
		want := modulePath
		if rel != "." {
			want = modulePath + "/" + filepath.ToSlash(rel)
		}
		matched := false
		for _, p := range pkgs {
			if p.Path == want || (recursive && strings.HasPrefix(p.Path, want+"/")) {
				matched = true
				selected[p.Path] = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matched no packages", pat)
		}
	}
	if all {
		return base, nil
	}
	return func(a *lint.Analyzer, pkgPath string) bool {
		return selected[pkgPath] && base(a, pkgPath)
	}, nil
}

// jsonSchema identifies the -json document shape; jsonSchemaVersion bumps
// on any incompatible change to it. Consumers should reject documents whose
// schema string they do not recognize and tolerate version increments that
// only add fields.
const (
	jsonSchema        = "rubixlint-findings"
	jsonSchemaVersion = 1
)

// jsonReport is the top-level -json document.
type jsonReport struct {
	Schema   string           `json:"schema"`
	Version  int              `json:"version"`
	Findings []jsonDiagnostic `json:"findings"`
}

// jsonDiagnostic is one finding in the -json output. Rule is the stable
// analyzer identifier and is byte-identical to the SARIF ruleId for the
// same finding, so cross-format correlation is a string compare.
type jsonDiagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
	Fixable bool   `json:"fixable"`
}

func writeJSON(w io.Writer, root string, diags []lint.Diagnostic) error {
	findings := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		file := d.Pos.Filename
		if rel, err := filepath.Rel(root, file); err == nil {
			file = filepath.ToSlash(rel)
		}
		findings = append(findings, jsonDiagnostic{
			File:    file,
			Line:    d.Pos.Line,
			Column:  d.Pos.Column,
			Rule:    d.Analyzer,
			Message: d.Message,
			Fixable: len(d.Fixes) > 0,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jsonReport{Schema: jsonSchema, Version: jsonSchemaVersion, Findings: findings})
}

// SARIF 2.1.0 minimal shapes — just enough for code-scanning upload.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

func writeSARIF(w io.Writer, root string, diags []lint.Diagnostic) error {
	var rules []sarifRule
	for _, a := range lint.All() {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		file := d.Pos.Filename
		if rel, err := filepath.Rel(root, file); err == nil {
			file = filepath.ToSlash(rel)
		}
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: file},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "rubixlint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
