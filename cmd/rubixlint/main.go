// Command rubixlint runs the project's static-analysis suite (determinism,
// bitwidth, seedflow, panicpolicy — see internal/lint) over the module.
//
// Usage:
//
//	go run ./cmd/rubixlint ./...
//	go run ./cmd/rubixlint ./internal/dram ./internal/sim
//
// With no arguments (or "./...") the whole module is checked. Findings
// print in the compiler's file:line:col format; the exit status is 1 when
// any finding survives the //lint:allow annotations, so the command can
// gate CI.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"rubix/internal/lint"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: rubixlint [packages]\n\n%s\n\nAnalyzers:\n", "Runs the project invariants suite over the module.")
		for _, a := range lint.All() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	if err := run(flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "rubixlint:", err)
		os.Exit(2)
	}
}

func run(patterns []string) error {
	root, modulePath, err := lint.FindModule(".")
	if err != nil {
		return err
	}
	pkgs, err := lint.NewLoader(root, modulePath).LoadAll()
	if err != nil {
		return err
	}
	pkgs, err = filterPackages(pkgs, patterns, root, modulePath)
	if err != nil {
		return err
	}
	diags, err := lint.Run(pkgs, lint.All(), lint.DefaultScope(modulePath))
	if err != nil {
		return err
	}
	for _, d := range diags {
		if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil {
			d.Pos.Filename = rel
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "rubixlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
	return nil
}

// filterPackages narrows the loaded set to the requested patterns. The
// whole module is always loaded first — project imports must resolve — so
// patterns only select what gets reported on.
func filterPackages(pkgs []*lint.Package, patterns []string, root, modulePath string) ([]*lint.Package, error) {
	if len(patterns) == 0 {
		return pkgs, nil
	}
	var out []*lint.Package
	seen := make(map[string]bool)
	for _, pat := range patterns {
		prefix, recursive := strings.CutSuffix(pat, "/...")
		if prefix == "." || prefix == "./" || pat == "./..." {
			return pkgs, nil
		}
		abs, err := filepath.Abs(strings.TrimSuffix(prefix, "/"))
		if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(root, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("pattern %q is outside the module", pat)
		}
		want := modulePath
		if rel != "." {
			want = modulePath + "/" + filepath.ToSlash(rel)
		}
		matched := false
		for _, p := range pkgs {
			if p.Path == want || (recursive && strings.HasPrefix(p.Path, want+"/")) {
				matched = true
				if !seen[p.Path] {
					seen[p.Path] = true
					out = append(out, p)
				}
			}
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matched no packages", pat)
		}
	}
	return out, nil
}
