package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule materializes a throwaway module and chdirs into it, so run()
// resolves it via FindModule.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module tmpmod\n\ngo 1.22\n"
	for name, content := range files { // key extraction not needed: write each
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	chdir(t, dir)
	return dir
}

// chdir is t.Chdir without the go1.24 floor the rest of the module avoids.
func chdir(t *testing.T, dir string) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := os.Chdir(old); err != nil {
			t.Fatal(err)
		}
	})
}

const libSrc = `// Package lib is a fixture.
package lib

import "errors"

// New may fail.
func New(n int) (int, error) {
	if n <= 0 {
		return 0, errors.New("lib: n must be positive")
	}
	return n, nil
}
`

// TestExitCodeClean pins exit 0 on a module without findings.
func TestExitCodeClean(t *testing.T) {
	writeModule(t, map[string]string{
		"lib/lib.go": libSrc,
		"use/use.go": `// Package use is a fixture.
package use

import "tmpmod/lib"

// Get propagates.
func Get() (int, error) {
	return lib.New(1)
}
`,
	})
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
}

const discardSrc = `// Package use is a fixture.
package use

import "tmpmod/lib"

// Get drops the error.
func Get() (int, error) {
	v, _ := lib.New(1)
	return v, nil
}
`

// TestExitCodeFindings pins exit 1 when findings survive.
func TestExitCodeFindings(t *testing.T) {
	writeModule(t, map[string]string{
		"lib/lib.go": libSrc,
		"use/use.go": discardSrc,
	})
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "errdiscard") {
		t.Errorf("stdout missing errdiscard finding:\n%s", out.String())
	}
}

// TestExitCodeLoadError pins exit 2 on unparsable source.
func TestExitCodeLoadError(t *testing.T) {
	writeModule(t, map[string]string{
		"lib/lib.go": "package lib\n\nfunc Broken( {\n",
	})
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
}

// TestFixIdempotent pins the -fix contract: the first run repairs the tree,
// the second finds nothing and changes nothing.
func TestFixIdempotent(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"lib/lib.go": libSrc,
		"use/use.go": discardSrc,
	})
	var out, errb bytes.Buffer
	code := run([]string{"-fix"}, &out, &errb)
	if code != 0 {
		t.Fatalf("first -fix run: exit = %d, want 0 (all findings fixable)\nstdout: %s\nstderr: %s",
			code, out.String(), errb.String())
	}
	fixed, err := os.ReadFile(filepath.Join(dir, "use/use.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(fixed), "v, err := lib.New(1)") ||
		!strings.Contains(string(fixed), "return 0, err") {
		t.Fatalf("fix not applied as expected:\n%s", fixed)
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-fix"}, &out, &errb); code != 0 {
		t.Fatalf("second -fix run: exit = %d, want 0\nstderr: %s", code, errb.String())
	}
	again, err := os.ReadFile(filepath.Join(dir, "use/use.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fixed, again) {
		t.Errorf("-fix is not idempotent:\nfirst:\n%s\nsecond:\n%s", fixed, again)
	}
}

// TestJSONOutput pins the -json shape.
func TestJSONOutput(t *testing.T) {
	writeModule(t, map[string]string{
		"lib/lib.go": libSrc,
		"use/use.go": discardSrc,
	})
	var out, errb bytes.Buffer
	if code := run([]string{"-json"}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr: %s", code, errb.String())
	}
	var diags []jsonDiagnostic
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(diags) != 1 || diags[0].Analyzer != "errdiscard" || !diags[0].Fixable {
		t.Errorf("unexpected -json payload: %+v", diags)
	}
	if diags[0].File != "use/use.go" {
		t.Errorf("file = %q, want module-relative use/use.go", diags[0].File)
	}
}

// TestSARIFOutput pins the -sarif envelope.
func TestSARIFOutput(t *testing.T) {
	writeModule(t, map[string]string{
		"lib/lib.go": libSrc,
		"use/use.go": discardSrc,
	})
	var out, errb bytes.Buffer
	if code := run([]string{"-sarif"}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr: %s", code, errb.String())
	}
	var log sarifLog
	if err := json.Unmarshal(out.Bytes(), &log); err != nil {
		t.Fatalf("-sarif output is not valid JSON: %v\n%s", err, out.String())
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("unexpected SARIF envelope: version %q, %d runs", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "rubixlint" || len(run.Results) != 1 {
		t.Fatalf("unexpected SARIF run: driver %q, %d results", run.Tool.Driver.Name, len(run.Results))
	}
	if got := run.Results[0].RuleID; got != "errdiscard" {
		t.Errorf("ruleId = %q, want errdiscard", got)
	}
	if len(run.Tool.Driver.Rules) == 0 {
		t.Error("SARIF rules table is empty")
	}
}

// TestFlagConflict pins exit 2 on -json -sarif together.
func TestFlagConflict(t *testing.T) {
	writeModule(t, map[string]string{"lib/lib.go": libSrc})
	var out, errb bytes.Buffer
	if code := run([]string{"-json", "-sarif"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}
