package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule materializes a throwaway module and chdirs into it, so run()
// resolves it via FindModule.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module tmpmod\n\ngo 1.22\n"
	for name, content := range files { // key extraction not needed: write each
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	chdir(t, dir)
	return dir
}

// chdir is t.Chdir without the go1.24 floor the rest of the module avoids.
func chdir(t *testing.T, dir string) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := os.Chdir(old); err != nil {
			t.Fatal(err)
		}
	})
}

const libSrc = `// Package lib is a fixture.
package lib

import "errors"

// New may fail.
func New(n int) (int, error) {
	if n <= 0 {
		return 0, errors.New("lib: n must be positive")
	}
	return n, nil
}
`

// TestExitCodeClean pins exit 0 on a module without findings.
func TestExitCodeClean(t *testing.T) {
	writeModule(t, map[string]string{
		"lib/lib.go": libSrc,
		"use/use.go": `// Package use is a fixture.
package use

import "tmpmod/lib"

// Get propagates.
func Get() (int, error) {
	return lib.New(1)
}
`,
	})
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
}

const discardSrc = `// Package use is a fixture.
package use

import "tmpmod/lib"

// Get drops the error.
func Get() (int, error) {
	v, _ := lib.New(1)
	return v, nil
}
`

// TestExitCodeFindings pins exit 1 when findings survive.
func TestExitCodeFindings(t *testing.T) {
	writeModule(t, map[string]string{
		"lib/lib.go": libSrc,
		"use/use.go": discardSrc,
	})
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "errdiscard") {
		t.Errorf("stdout missing errdiscard finding:\n%s", out.String())
	}
}

// TestExitCodeLoadError pins exit 2 on unparsable source.
func TestExitCodeLoadError(t *testing.T) {
	writeModule(t, map[string]string{
		"lib/lib.go": "package lib\n\nfunc Broken( {\n",
	})
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
}

// TestFixIdempotent pins the -fix contract: the first run repairs the tree,
// the second finds nothing and changes nothing.
func TestFixIdempotent(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"lib/lib.go": libSrc,
		"use/use.go": discardSrc,
	})
	var out, errb bytes.Buffer
	code := run([]string{"-fix"}, &out, &errb)
	if code != 0 {
		t.Fatalf("first -fix run: exit = %d, want 0 (all findings fixable)\nstdout: %s\nstderr: %s",
			code, out.String(), errb.String())
	}
	fixed, err := os.ReadFile(filepath.Join(dir, "use/use.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(fixed), "v, err := lib.New(1)") ||
		!strings.Contains(string(fixed), "return 0, err") {
		t.Fatalf("fix not applied as expected:\n%s", fixed)
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-fix"}, &out, &errb); code != 0 {
		t.Fatalf("second -fix run: exit = %d, want 0\nstderr: %s", code, errb.String())
	}
	again, err := os.ReadFile(filepath.Join(dir, "use/use.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fixed, again) {
		t.Errorf("-fix is not idempotent:\nfirst:\n%s\nsecond:\n%s", fixed, again)
	}
}

// TestJSONOutput pins the -json envelope: schema/version header plus a
// findings array whose rule ids are shared with the SARIF output.
func TestJSONOutput(t *testing.T) {
	writeModule(t, map[string]string{
		"lib/lib.go": libSrc,
		"use/use.go": discardSrc,
	})
	var out, errb bytes.Buffer
	if code := run([]string{"-json"}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr: %s", code, errb.String())
	}
	var report jsonReport
	if err := json.Unmarshal(out.Bytes(), &report); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, out.String())
	}
	if report.Schema != jsonSchema || report.Version != jsonSchemaVersion {
		t.Errorf("envelope = %q v%d, want %q v%d", report.Schema, report.Version, jsonSchema, jsonSchemaVersion)
	}
	diags := report.Findings
	if len(diags) != 1 || diags[0].Rule != "errdiscard" || !diags[0].Fixable {
		t.Errorf("unexpected -json payload: %+v", diags)
	}
	if diags[0].File != "use/use.go" {
		t.Errorf("file = %q, want module-relative use/use.go", diags[0].File)
	}
}

// TestJSONDeterministic pins byte-identical -json output across two runs of
// the same tree: CI diffing and caching depend on it.
func TestJSONDeterministic(t *testing.T) {
	writeModule(t, map[string]string{
		"lib/lib.go": libSrc,
		"use/use.go": discardSrc,
	})
	var first, second, errb bytes.Buffer
	if code := run([]string{"-json"}, &first, &errb); code != 1 {
		t.Fatalf("first run: exit = %d, want 1\nstderr: %s", code, errb.String())
	}
	errb.Reset()
	if code := run([]string{"-json"}, &second, &errb); code != 1 {
		t.Fatalf("second run: exit = %d, want 1\nstderr: %s", code, errb.String())
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Errorf("-json output differs between runs:\nfirst:\n%s\nsecond:\n%s", first.String(), second.String())
	}
}

// TestJSONRuleMatchesSARIFRuleID pins the cross-format contract: the same
// finding carries the same rule identifier in -json and -sarif.
func TestJSONRuleMatchesSARIFRuleID(t *testing.T) {
	writeModule(t, map[string]string{
		"lib/lib.go": libSrc,
		"use/use.go": discardSrc,
	})
	var jsonOut, sarifOut, errb bytes.Buffer
	if code := run([]string{"-json"}, &jsonOut, &errb); code != 1 {
		t.Fatalf("-json run: exit = %d, want 1\nstderr: %s", code, errb.String())
	}
	errb.Reset()
	if code := run([]string{"-sarif"}, &sarifOut, &errb); code != 1 {
		t.Fatalf("-sarif run: exit = %d, want 1\nstderr: %s", code, errb.String())
	}
	var report jsonReport
	if err := json.Unmarshal(jsonOut.Bytes(), &report); err != nil {
		t.Fatal(err)
	}
	var log sarifLog
	if err := json.Unmarshal(sarifOut.Bytes(), &log); err != nil {
		t.Fatal(err)
	}
	if len(report.Findings) != 1 || len(log.Runs) != 1 || len(log.Runs[0].Results) != 1 {
		t.Fatalf("want exactly one finding in both formats, got %d json / %d sarif",
			len(report.Findings), len(log.Runs[0].Results))
	}
	if jr, sr := report.Findings[0].Rule, log.Runs[0].Results[0].RuleID; jr != sr {
		t.Errorf("json rule %q != sarif ruleId %q", jr, sr)
	}
}

// TestOnlyUnknownAnalyzer pins the -only contract: a typo'd analyzer name is
// a usage error (exit 2), never a silently clean run.
func TestOnlyUnknownAnalyzer(t *testing.T) {
	writeModule(t, map[string]string{"lib/lib.go": libSrc})
	var out, errb bytes.Buffer
	if code := run([]string{"-only", "errdiscard,nosuchanalyzer"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(errb.String(), "nosuchanalyzer") {
		t.Errorf("stderr does not name the unknown analyzer:\n%s", errb.String())
	}
}

// TestOnlySelects pins that -only narrows the suite: the errdiscard finding
// fires under -only errdiscard and disappears under -only determinism.
func TestOnlySelects(t *testing.T) {
	writeModule(t, map[string]string{
		"lib/lib.go": libSrc,
		"use/use.go": discardSrc,
	})
	var out, errb bytes.Buffer
	if code := run([]string{"-only", "errdiscard"}, &out, &errb); code != 1 {
		t.Fatalf("-only errdiscard: exit = %d, want 1\nstderr: %s", code, errb.String())
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-only", "determinism"}, &out, &errb); code != 0 {
		t.Fatalf("-only determinism: exit = %d, want 0\nstdout: %s\nstderr: %s",
			code, out.String(), errb.String())
	}
}

// TestAllowAudit pins -allow-audit: a stale guard and an unjustified guard
// each fail the run with a named finding; a live justified guard passes.
func TestAllowAudit(t *testing.T) {
	writeModule(t, map[string]string{
		"lib/lib.go": libSrc,
		"use/use.go": `// Package use is a fixture.
package use

import "tmpmod/lib"

// Get drops the error, guarded with a reason.
func Get() (int, error) {
	//lint:allow errdiscard fixture exercises the guard path
	v, _ := lib.New(1)
	return v, nil
}

// Stale carries a guard with nothing left to suppress.
func Stale() (int, error) {
	//lint:allow errdiscard nothing fires here anymore
	return lib.New(1)
}

// Bare carries a guard with no justification.
func Bare() (int, error) {
	//lint:allow errdiscard
	v, _ := lib.New(2)
	return v, nil
}
`,
	})
	var out, errb bytes.Buffer
	if code := run([]string{"-allow-audit"}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "stale") {
		t.Errorf("audit output missing stale finding:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "justification") {
		t.Errorf("audit output missing unjustified finding:\n%s", out.String())
	}
	if strings.Contains(out.String(), "exercises the guard path") {
		t.Errorf("live justified guard was reported:\n%s", out.String())
	}
}

// TestAllowAuditClean pins exit 0 when every guard is live and justified.
func TestAllowAuditClean(t *testing.T) {
	writeModule(t, map[string]string{
		"lib/lib.go": libSrc,
		"use/use.go": `// Package use is a fixture.
package use

import "tmpmod/lib"

// Get drops the error under a justified guard.
func Get() (int, error) {
	//lint:allow errdiscard fixture exercises the guard path
	v, _ := lib.New(1)
	return v, nil
}
`,
	})
	var out, errb bytes.Buffer
	if code := run([]string{"-allow-audit"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
}

// TestAllowAuditPatternScope pins that auditing a package subset leaves
// guards in dependency packages alone: analyzers never ran there, so judging
// them would report every one stale.
func TestAllowAuditPatternScope(t *testing.T) {
	writeModule(t, map[string]string{
		"lib/lib.go": `// Package lib is a fixture.
package lib

import "errors"

// New returns n or an error.
func New(n int) (int, error) {
	if n < 0 {
		return 0, errors.New("negative")
	}
	return n, nil
}

// Probe drops the error under a guard that is live when lib is audited.
func Probe() int {
	//lint:allow errdiscard fixture: the probe tolerates failure
	v, _ := New(1)
	return v
}
`,
		"use/use.go": `// Package use is a fixture.
package use

import "tmpmod/lib"

// Get drops the error under a justified guard.
func Get() (int, error) {
	//lint:allow errdiscard fixture exercises the guard path
	v, _ := lib.New(1)
	return v, nil
}
`,
	})
	var out, errb bytes.Buffer
	if code := run([]string{"-allow-audit", "./use"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if strings.Contains(out.String(), "lib.go") {
		t.Errorf("out-of-pattern guard was audited:\n%s", out.String())
	}
}

// TestAllowAuditOnlySubset pins that auditing under -only skips guards
// naming registered-but-unselected analyzers (their liveness is unknowable
// in this run) while still flagging genuinely unknown names.
func TestAllowAuditOnlySubset(t *testing.T) {
	writeModule(t, map[string]string{
		"lib/lib.go": libSrc,
		"use/use.go": `// Package use is a fixture.
package use

import "tmpmod/lib"

// Get drops the error under a justified guard; the determinism guard names
// a real analyzer outside the -only selection and the nosuchlint guard
// names nothing.
func Get() (int, error) {
	//lint:allow determinism fixture: not judged when unselected
	//lint:allow nosuchlint fixture: never registered
	//lint:allow errdiscard fixture exercises the guard path
	v, _ := lib.New(1)
	return v, nil
}
`,
	})
	var out, errb bytes.Buffer
	if code := run([]string{"-allow-audit", "-only", "errdiscard"}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "nosuchlint") {
		t.Errorf("unknown-analyzer guard not reported:\n%s", out.String())
	}
	if strings.Contains(out.String(), "determinism") {
		t.Errorf("unselected analyzer's guard was judged:\n%s", out.String())
	}
}

// TestSARIFOutput pins the -sarif envelope.
func TestSARIFOutput(t *testing.T) {
	writeModule(t, map[string]string{
		"lib/lib.go": libSrc,
		"use/use.go": discardSrc,
	})
	var out, errb bytes.Buffer
	if code := run([]string{"-sarif"}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr: %s", code, errb.String())
	}
	var log sarifLog
	if err := json.Unmarshal(out.Bytes(), &log); err != nil {
		t.Fatalf("-sarif output is not valid JSON: %v\n%s", err, out.String())
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("unexpected SARIF envelope: version %q, %d runs", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "rubixlint" || len(run.Results) != 1 {
		t.Fatalf("unexpected SARIF run: driver %q, %d results", run.Tool.Driver.Name, len(run.Results))
	}
	if got := run.Results[0].RuleID; got != "errdiscard" {
		t.Errorf("ruleId = %q, want errdiscard", got)
	}
	if len(run.Tool.Driver.Rules) == 0 {
		t.Error("SARIF rules table is empty")
	}
}

// TestFlagConflict pins exit 2 on -json -sarif together.
func TestFlagConflict(t *testing.T) {
	writeModule(t, map[string]string{"lib/lib.go": libSrc})
	var out, errb bytes.Buffer
	if code := run([]string{"-json", "-sarif"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}
