// Command benchjson converts `go test -bench` text output on stdin into a
// stable JSON document on stdout, so benchmark baselines can be committed
// and diffed (see BENCH_sim.json and `make bench`).
//
// Usage:
//
//	go test -bench . -benchmem -run '^$' ./... | go run ./cmd/benchjson > BENCH_sim.json
//
// Only benchmark result lines are parsed; build noise, PASS/ok lines, and
// unparsable lines pass through to stderr untouched. Iteration counts and
// wall-clock-dependent ns/op vary run to run — the committed baseline is a
// reference point for humans and coarse regression eyeballing, not a CI
// gate.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Package     string  `json:"package,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Doc is the committed JSON shape.
type Doc struct {
	Note    string   `json:"note"`
	Results []Result `json:"results"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run() error {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	doc := Doc{
		Note: "go test -bench . -benchmem baseline; regenerate with `make bench`",
	}
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if r, ok := parseBenchLine(line, pkg); ok {
			doc.Results = append(doc.Results, r)
			continue
		}
		if strings.HasPrefix(line, "Benchmark") {
			// A benchmark line we failed to parse deserves a loud complaint.
			fmt.Fprintln(os.Stderr, "benchjson: unparsed:", line)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// parseBenchLine parses one `BenchmarkX-8  1000  123.4 ns/op  16 B/op  1
// allocs/op` line.
func parseBenchLine(line, pkg string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Package: pkg, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Result{}, false
			}
			r.NsPerOp = f
		case "B/op":
			r.BytesPerOp, _ = strconv.ParseInt(val, 10, 64)
		case "allocs/op":
			r.AllocsPerOp, _ = strconv.ParseInt(val, 10, 64)
		}
	}
	if r.NsPerOp == 0 {
		return Result{}, false
	}
	return r, true
}
