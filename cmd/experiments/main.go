// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -exp table2            # workload characteristics
//	experiments -exp fig8 -scale 0.5   # performance at TRH=128, half-size run
//	experiments -exp all               # everything (slow)
//
// Experiment ids: fig3, table2, fig4, table3, fig7, fig8, fig9, sec4.8,
// sec4.9, fig12, fig13, table4, fig14, fig15, fig16, fig17, table5, sec5.4,
// sec6.1, sec6.2, plus the ablations ablation-rr (remap-rate sweep),
// ablation-seg (v-segments), and ablation-trr (victim-refresh work).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"

	"rubix/internal/geom"
	"rubix/internal/sim"
)

// runTimer collects per-run wall times via Options.OnRunDone and
// Options.OnRunErr; it must be safe for the concurrent callbacks Prefetch
// produces. Failed attempts count too: before OnRunErr existed, -progress
// undercounted sweeps with failures and the timing table silently dropped
// the time those attempts burned.
type runTimer struct {
	mu       sync.Mutex
	progress bool
	specs    []string // guarded by mu
	wallNs   []int64  // guarded by mu
	failed   int      // guarded by mu
}

func (t *runTimer) done(spec sim.RunSpec, _ *sim.Result, wallNs int64) {
	t.mu.Lock()
	t.specs = append(t.specs, spec.String())
	t.wallNs = append(t.wallNs, wallNs)
	n := len(t.specs)
	t.mu.Unlock()
	if t.progress {
		fmt.Fprintf(os.Stderr, "experiments: run %3d done in %6.2fs: %s\n",
			n, float64(wallNs)/1e9, spec)
	}
}

func (t *runTimer) fail(spec sim.RunSpec, err error, wallNs int64) {
	t.mu.Lock()
	t.specs = append(t.specs, spec.String()+" [FAILED]")
	t.wallNs = append(t.wallNs, wallNs)
	t.failed++
	n := len(t.specs)
	t.mu.Unlock()
	if t.progress {
		fmt.Fprintf(os.Stderr, "experiments: run %3d FAILED in %6.2fs: %s: %v\n",
			n, float64(wallNs)/1e9, spec, err)
	}
}

// table renders the aggregate timing summary: total simulated runs, total
// wall time, and the slowest configurations.
func (t *runTimer) table(top int) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.specs) == 0 {
		return ""
	}
	idx := make([]int, len(t.specs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return t.wallNs[idx[a]] > t.wallNs[idx[b]] })
	var total int64
	for _, ns := range t.wallNs {
		total += ns
	}
	var b strings.Builder
	if t.failed > 0 {
		fmt.Fprintf(&b, "Timing: %d simulated runs (%d failed), %.1fs total wall time (parallel)\n",
			len(t.specs), t.failed, float64(total)/1e9)
	} else {
		fmt.Fprintf(&b, "Timing: %d simulated runs, %.1fs total wall time (parallel)\n",
			len(t.specs), float64(total)/1e9)
	}
	if top > len(idx) {
		top = len(idx)
	}
	for _, i := range idx[:top] {
		fmt.Fprintf(&b, "  %6.2fs  %s\n", float64(t.wallNs[i])/1e9, t.specs[i])
	}
	return b.String()
}

func main() {
	var (
		exp      = flag.String("exp", "table2", "experiment id or 'all'")
		scale    = flag.Float64("scale", 1.0, "fraction of the 250M-instruction budget")
		wls      = flag.String("workloads", "", "comma-separated workload subset (default: full suite)")
		mixes    = flag.Bool("mixes", true, "include the 16 mixed workloads where the paper does")
		seed     = flag.Uint64("seed", 42, "random seed")
		jsonPath = flag.String("json", "", "also write the experiment's structured rows as JSON to this file")
		progress = flag.Bool("progress", false, "print per-run progress to stderr and a timing table at the end")
		checks   = flag.String("check", "", "runtime checking: 'paranoid' runs every simulation with invariant checks attached")
		shards   = flag.Int("shards", 0, "channel-sharded event loops per run: 0 = auto, 1 = serial, else a power of two")
	)
	flag.Parse()
	// Validate the shard request here, not mid-sweep: a bad value must fail
	// before hours of simulation start.
	if *shards < 0 || *shards&(*shards-1) != 0 {
		fmt.Fprintf(os.Stderr, "experiments: -shards %d: want 0 (auto) or a power of two\n", *shards)
		os.Exit(2)
	}

	timer := &runTimer{progress: *progress}
	// SeedSet: the -seed flag was resolved by flag.Parse, so even an explicit
	// -seed 0 must be honored rather than remapped to the default.
	opts := sim.Options{Scale: *scale, Seed: *seed, SeedSet: true, Shards: *shards,
		OnRunDone: timer.done, OnRunErr: timer.fail}
	switch *checks {
	case "":
	case "paranoid":
		opts.Paranoid = true
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown -check mode %q (want paranoid)\n", *checks)
		os.Exit(2)
	}
	if *wls != "" {
		opts.Workloads = strings.Split(*wls, ",")
	}
	if !*mixes {
		opts.Mixes = []int{}
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = []string{"fig3", "table2", "fig4", "table3", "fig7", "fig8", "fig9",
			"sec4.8", "sec4.9", "fig12", "fig13", "table4", "fig14", "fig15",
			"fig16", "fig17", "table5", "sec5.4", "sec6.1", "sec6.2"}
	}
	allRows := map[string]any{}
	for _, id := range ids {
		out, rows, err := runExperiment(id, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(out)
		allRows[id] = rows
	}
	if *progress {
		fmt.Fprint(os.Stderr, timer.table(10))
	}
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(allRows); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
}

func runExperiment(id string, opts sim.Options) (string, any, error) {
	s := sim.NewSuite(opts)
	switch id {
	case "fig3":
		rows, err := s.Fig3()
		if err != nil {
			return "", nil, err
		}
		return sim.FormatFig3(rows), rows, nil

	case "table2":
		rows, err := s.Table2()
		if err != nil {
			return "", nil, err
		}
		return sim.FormatTable2(rows), rows, nil

	case "fig4":
		rows, err := s.Fig4()
		if err != nil {
			return "", nil, err
		}
		return sim.FormatFig4(rows), rows, nil

	case "table3":
		rows, err := s.Table3()
		if err != nil {
			return "", nil, err
		}
		return sim.FormatTable3(rows), rows, nil

	case "fig7":
		maps := []string{"coffeelake", "skylake", "rubixs-gs4"}
		rows, err := s.HotRows(maps)
		if err != nil {
			return "", nil, err
		}
		return sim.FormatHotRows("Figure 7: hot rows (ACT-64+) per workload", maps, rows), rows, nil

	case "fig8":
		var b strings.Builder
		for _, mit := range []string{"aqua", "srs", "blockhammer"} {
			maps := []string{"coffeelake", "skylake", sim.BestGS("rubixs", mit)}
			rows, err := s.PerfAtTRH(mit, 128, maps)
			if err != nil {
				return "", nil, err
			}
			b.WriteString(sim.FormatPerf(
				fmt.Sprintf("Figure 8 (%s): normalized performance at TRH=128", strings.ToUpper(mit)),
				maps, rows))
			b.WriteString("\n")
		}
		return b.String(), nil, nil

	case "fig9":
		maps := []string{"rubixs-gs1", "rubixs-gs2", "rubixs-gs4"}
		rows, err := s.GangSweep(maps, []string{"aqua", "srs", "blockhammer"}, 128)
		if err != nil {
			return "", nil, err
		}
		return sim.FormatGangSweep("Figure 9: Rubix-S slowdown vs gang size (TRH=128)", rows), rows, nil

	case "sec4.8":
		maps := []string{"coffeelake", "skylake", "rubixs-gs1", "rubixs-gs2", "rubixs-gs4"}
		rows, err := s.GangSweep(maps, []string{"none"}, 128)
		if err != nil {
			return "", nil, err
		}
		return sim.FormatGangSweep("Section 4.8: row-buffer hit rate by mapping", rows), rows, nil

	case "sec4.9":
		maps := []string{"coffeelake", "rubixs-gs1", "rubixs-gs2", "rubixs-gs4"}
		rows, err := s.GangSweep(maps, []string{"none"}, 128)
		if err != nil {
			return "", nil, err
		}
		return sim.FormatGangSweep("Section 4.9: DRAM power by mapping (unprotected)", rows), rows, nil

	case "fig12":
		maps := []string{"coffeelake", "skylake",
			"rubixs-gs1", "rubixs-gs2", "rubixs-gs4",
			"rubixd-gs1", "rubixd-gs2", "rubixd-gs4"}
		rows, err := s.HotRows(maps)
		if err != nil {
			return "", nil, err
		}
		return sim.FormatHotRows("Figure 12: hot rows, baselines vs Rubix-S/D", maps, rows), rows, nil

	case "fig13":
		var b strings.Builder
		for _, mit := range []string{"aqua", "srs", "blockhammer"} {
			maps := []string{"coffeelake", "skylake", sim.BestGS("rubixd", mit)}
			rows, err := s.PerfAtTRH(mit, 128, maps)
			if err != nil {
				return "", nil, err
			}
			b.WriteString(sim.FormatPerf(
				fmt.Sprintf("Figure 13 (%s): normalized performance at TRH=128 with Rubix-D", strings.ToUpper(mit)),
				maps, rows))
			b.WriteString("\n")
		}
		return b.String(), nil, nil

	case "table4":
		maps := []string{"rubixs-gs4", "rubixs-gs2", "rubixs-gs1",
			"rubixd-gs4", "rubixd-gs2", "rubixd-gs1"}
		rows, err := s.GangSweep(maps, []string{"none"}, 128)
		if err != nil {
			return "", nil, err
		}
		return sim.FormatGangSweep("Table 4: isolated mapping overhead (no mitigation)", rows), rows, nil

	case "fig14":
		var b strings.Builder
		b.WriteString("Figure 14: Rubix slowdown at higher thresholds (GS4)\n")
		for _, trh := range []int{128, 512, 1024} {
			rows, err := s.GangSweep([]string{"rubixs-gs4", "rubixd-gs4"},
				[]string{"aqua", "srs", "blockhammer"}, trh)
			if err != nil {
				return "", nil, err
			}
			b.WriteString(sim.FormatGangSweep(fmt.Sprintf("TRH = %d", trh), rows))
		}
		return b.String(), nil, nil

	case "fig15":
		var b strings.Builder
		subset := opts.Workloads
		if subset == nil {
			subset = []string{"blender", "lbm", "gcc", "cactuBSSN", "mcf", "roms", "perlbench", "xz"}
		}
		for _, ch := range []int{2, 4} {
			g := geom.DDR4_32GB2Ch()
			if ch == 4 {
				g = geom.DDR4_32GB4Ch()
			}
			o := opts
			o.Cores = 8
			o.Geometry = g
			o.Workloads = subset
			o.Mixes = []int{}
			s8 := sim.NewSuite(o)
			rows, err := s8.GangSweep(
				[]string{"coffeelake", "rubixs-gs4", "rubixd-gs4"},
				[]string{"aqua", "srs", "blockhammer"}, 128)
			if err != nil {
				return "", nil, err
			}
			b.WriteString(sim.FormatGangSweep(
				fmt.Sprintf("Figure 15: 8-core, 32GB DDR4, %d channels (TRH=128)", ch), rows))
		}
		return b.String(), nil, nil

	case "fig16":
		o := opts
		o.Workloads = []string{"stream-copy", "stream-scale", "stream-add", "stream-triad"}
		o.Mixes = []int{}
		ss := sim.NewSuite(o)
		rows, err := ss.GangSweep(
			[]string{"coffeelake", "skylake", "rubixs-gs4", "rubixd-gs4"},
			[]string{"none", "aqua", "srs", "blockhammer"}, 128)
		if err != nil {
			return "", nil, err
		}
		return sim.FormatGangSweep("Figure 16: STREAM workloads (TRH=128)", rows), rows, nil

	case "fig17":
		rows, err := s.GangSweep(
			[]string{"coffeelake", "skylake", "mop", "rubixs-gs4", "rubixd-gs4"},
			[]string{"aqua", "srs", "blockhammer"}, 128)
		if err != nil {
			return "", nil, err
		}
		return sim.FormatGangSweep("Figure 17: MOP vs Rubix (TRH=128)", rows), rows, nil

	case "table5":
		rows, err := s.GangSweep(
			[]string{"coffeelake"}, []string{"trr", "aqua", "srs", "blockhammer"}, 128)
		if err != nil {
			return "", nil, err
		}
		rubix, err := s.GangSweep(
			[]string{"rubixs-gs4"}, []string{"aqua", "srs", "blockhammer"}, 128)
		if err != nil {
			return "", nil, err
		}
		var b strings.Builder
		b.WriteString(sim.FormatGangSweep("Table 5: mitigation comparison (baseline mapping)", rows))
		b.WriteString(sim.FormatGangSweep("Table 5 (cont.): with Rubix-S", rubix))
		b.WriteString("TRR is NOT secure (Half-Double); AQUA/SRS/BlockHammer are secure;\nRubix preserves the underlying scheme's security (§4.10).\n")
		return b.String(), nil, nil

	case "sec5.4":
		rows, err := s.RemapRate(4)
		if err != nil {
			return "", nil, err
		}
		var b strings.Builder
		b.WriteString("Section 5.4: Rubix-D remapping activity (RR=1%, GS4)\n")
		fmt.Fprintf(&b, "%-12s %12s %14s %12s\n", "workload", "swaps", "demand ACTs", "extra ACTs")
		for _, r := range rows {
			fmt.Fprintf(&b, "%-12s %12d %14d %11.2f%%\n", r.Workload, r.Swaps, r.DemandActs, r.ExtraActPct)
		}
		return b.String(), nil, nil

	case "sec6.1":
		rows, err := s.GangSweep([]string{"largestride-gs4"},
			[]string{"none", "aqua", "srs", "blockhammer"}, 128)
		if err != nil {
			return "", nil, err
		}
		return sim.FormatGangSweep("Section 6.1: large-stride mapping (no cipher)", rows), rows, nil

	case "ablation-rr":
		rows, err := s.AblationRemapRate(4, []float64{0.001, 0.01, 0.05})
		if err != nil {
			return "", nil, err
		}
		return sim.FormatRemapRate(rows), rows, nil

	case "ablation-seg":
		rows, err := s.AblationSegments(4, []int{1, 8, 32})
		if err != nil {
			return "", nil, err
		}
		return sim.FormatSegments(rows), rows, nil

	case "ablation-trr":
		rows, err := s.AblationTRR([]string{"coffeelake", "rubixs-gs4"})
		if err != nil {
			return "", nil, err
		}
		return sim.FormatTRR(rows), rows, nil

	case "ablation-trackers":
		rows, err := s.AblationTrackers()
		if err != nil {
			return "", nil, err
		}
		return sim.FormatTrackers(rows), rows, nil

	case "ablation-policy":
		rows, err := s.AblationPagePolicy()
		if err != nil {
			return "", nil, err
		}
		return sim.FormatPagePolicy(rows), rows, nil

	case "ablation-writes":
		rows, err := s.AblationWriteTraffic([]float64{0, 0.2, 0.4})
		if err != nil {
			return "", nil, err
		}
		return sim.FormatWriteTraffic(rows), rows, nil

	case "sec6.2":
		rows, err := s.GangSweep(
			[]string{"staticxor-gs4", "staticxor-gs2", "staticxor-gs1"},
			[]string{"none", "aqua", "srs", "blockhammer"}, 128)
		if err != nil {
			return "", nil, err
		}
		return sim.FormatGangSweep("Section 6.2: keyed-XOR without dynamic remapping", rows), rows, nil
	}
	return "", nil, fmt.Errorf("unknown experiment %q (see -h)", id)
}
