package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func defaults() Tolerances {
	return Tolerances{NsTol: 0.75, AllocsTol: 0.05, AllocsSlack: 3, BytesTol: 0.30, BytesSlack: 4096}
}

func one(verdicts []Verdict, t *testing.T) *Verdict {
	t.Helper()
	if len(verdicts) != 1 {
		t.Fatalf("got %d verdicts, want 1", len(verdicts))
	}
	return &verdicts[0]
}

func TestCompareWithinTolerancePasses(t *testing.T) {
	base := []Result{{Name: "BenchmarkX", Package: "p", NsPerOp: 1000, BytesPerOp: 100, AllocsPerOp: 10}}
	fresh := []Result{{Name: "BenchmarkX", Package: "p", NsPerOp: 1700, BytesPerOp: 120, AllocsPerOp: 10}}
	v := one(Compare(base, fresh, defaults()), t)
	if !v.OK() {
		t.Fatalf("within-tolerance run failed: %v", v.Failures)
	}
}

func TestCompareNsRegressionFails(t *testing.T) {
	base := []Result{{Name: "BenchmarkX", NsPerOp: 1000}}
	fresh := []Result{{Name: "BenchmarkX", NsPerOp: 1800}}
	v := one(Compare(base, fresh, defaults()), t)
	if v.OK() {
		t.Fatal("+80% ns/op passed a +75% gate")
	}
	if !strings.Contains(v.Failures[0], "ns/op") {
		t.Fatalf("failure not attributed to ns/op: %v", v.Failures)
	}
}

func TestCompareNsDisabled(t *testing.T) {
	tol := defaults()
	tol.NsTol = -1
	base := []Result{{Name: "BenchmarkX", NsPerOp: 1000}}
	fresh := []Result{{Name: "BenchmarkX", NsPerOp: 9000}}
	if v := one(Compare(base, fresh, tol), t); !v.OK() {
		t.Fatalf("ns check disabled but still failed: %v", v.Failures)
	}
}

func TestCompareAllocsStrict(t *testing.T) {
	// 5% of 100 = 5, slack 3 → limit 108.
	base := []Result{{Name: "BenchmarkX", NsPerOp: 1, AllocsPerOp: 100}}
	ok := []Result{{Name: "BenchmarkX", NsPerOp: 1, AllocsPerOp: 108}}
	bad := []Result{{Name: "BenchmarkX", NsPerOp: 1, AllocsPerOp: 109}}
	if v := one(Compare(base, ok, defaults()), t); !v.OK() {
		t.Fatalf("allocs at the limit failed: %v", v.Failures)
	}
	if v := one(Compare(base, bad, defaults()), t); v.OK() {
		t.Fatal("allocs one past the limit passed")
	}
}

func TestCompareZeroAllocBaselineStaysZeroAlloc(t *testing.T) {
	// benchjson omits allocs_per_op when zero; a zero-alloc baseline only
	// tolerates the constant slack.
	base := []Result{{Name: "BenchmarkHot", NsPerOp: 5}}
	ok := []Result{{Name: "BenchmarkHot", NsPerOp: 5, AllocsPerOp: 3}}
	bad := []Result{{Name: "BenchmarkHot", NsPerOp: 5, AllocsPerOp: 4}}
	if v := one(Compare(base, ok, defaults()), t); !v.OK() {
		t.Fatalf("slack-sized alloc count failed: %v", v.Failures)
	}
	if v := one(Compare(base, bad, defaults()), t); v.OK() {
		t.Fatal("zero-alloc baseline regressed past slack but passed")
	}
}

func TestCompareBytesRegressionFails(t *testing.T) {
	base := []Result{{Name: "BenchmarkX", NsPerOp: 1, BytesPerOp: 1 << 20}}
	fresh := []Result{{Name: "BenchmarkX", NsPerOp: 1, BytesPerOp: 2 << 20}}
	v := one(Compare(base, fresh, defaults()), t)
	if v.OK() {
		t.Fatal("2x bytes/op passed a +30% gate")
	}
	if !strings.Contains(v.Failures[0], "bytes/op") {
		t.Fatalf("failure not attributed to bytes/op: %v", v.Failures)
	}
}

func TestCompareMissingCounterpartsNeverFail(t *testing.T) {
	base := []Result{{Name: "BenchmarkOld", NsPerOp: 1}}
	fresh := []Result{{Name: "BenchmarkNew", NsPerOp: 1}}
	verdicts := Compare(base, fresh, defaults())
	if len(verdicts) != 2 {
		t.Fatalf("got %d verdicts, want 2", len(verdicts))
	}
	for _, v := range verdicts {
		if !v.OK() {
			t.Fatalf("missing counterpart failed the gate: %s %v", v.Key, v.Failures)
		}
	}
}

func TestCompareSortedOutput(t *testing.T) {
	base := []Result{
		{Name: "BenchmarkB", Package: "z", NsPerOp: 1},
		{Name: "BenchmarkA", Package: "a", NsPerOp: 1},
	}
	verdicts := Compare(base, base, defaults())
	if verdicts[0].Key != "a.BenchmarkA" || verdicts[1].Key != "z.BenchmarkB" {
		t.Fatalf("verdicts not sorted: %s, %s", verdicts[0].Key, verdicts[1].Key)
	}
}

func TestReportCountsFailures(t *testing.T) {
	base := []Result{
		{Name: "BenchmarkOK", NsPerOp: 100, AllocsPerOp: 1},
		{Name: "BenchmarkBad", NsPerOp: 100, AllocsPerOp: 1},
	}
	fresh := []Result{
		{Name: "BenchmarkOK", NsPerOp: 100, AllocsPerOp: 1},
		{Name: "BenchmarkBad", NsPerOp: 100, AllocsPerOp: 500},
	}
	var buf bytes.Buffer
	failed := Report(&buf, Compare(base, fresh, defaults()))
	if failed != 1 {
		t.Fatalf("failed = %d, want 1", failed)
	}
	out := buf.String()
	if !strings.Contains(out, "FAIL") || !strings.Contains(out, "BenchmarkBad") {
		t.Fatalf("report missing failure line:\n%s", out)
	}
}

func writeDoc(t *testing.T, dir, name string, d Doc) string {
	t.Helper()
	b, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	basePath := writeDoc(t, dir, "base.json", Doc{Results: []Result{
		{Name: "BenchmarkX", Package: "p", NsPerOp: 1000, AllocsPerOp: 10},
	}})

	freshOK, err := json.Marshal(Doc{Results: []Result{
		{Name: "BenchmarkX", Package: "p", NsPerOp: 900, AllocsPerOp: 10},
	}})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-baseline", basePath}, bytes.NewReader(freshOK), &out); err != nil {
		t.Fatalf("clean run failed: %v\n%s", err, out.String())
	}

	freshBad := writeDoc(t, dir, "fresh.json", Doc{Results: []Result{
		{Name: "BenchmarkX", Package: "p", NsPerOp: 900, AllocsPerOp: 999},
	}})
	out.Reset()
	err = run([]string{"-baseline", basePath, freshBad}, strings.NewReader(""), &out)
	if err == nil {
		t.Fatalf("regressed run passed:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestRunMissingBaseline(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-baseline", filepath.Join(t.TempDir(), "nope.json")}, strings.NewReader("{}"), &out)
	if err == nil {
		t.Fatal("missing baseline accepted")
	}
}
