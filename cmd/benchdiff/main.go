// Command benchdiff gates benchmark regressions against the committed
// baseline. It reads a fresh cmd/benchjson document (stdin or a file
// argument), joins it with the baseline JSON (BENCH_sim.json), and fails —
// exit code 1 — when any benchmark regresses past its threshold.
//
// Thresholds are asymmetric by design. Allocation counts are deterministic
// for a deterministic simulator, so allocs/op is gated strictly (small
// relative tolerance plus a constant slack for amortized-growth rounding).
// Wall time on shared CI runners is noisy, so ns/op gets a generous
// multiplicative tolerance; bytes/op sits in between. Benchmarks present
// on only one side are reported but never fail the gate, so adding a
// benchmark does not require regenerating the baseline in the same change.
//
// Usage:
//
//	go test -bench . -benchmem -run '^$' ./... | go run ./cmd/benchjson \
//	    | go run ./cmd/benchdiff -baseline BENCH_sim.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
)

// Result mirrors cmd/benchjson's per-benchmark record.
type Result struct {
	Name        string  `json:"name"`
	Package     string  `json:"package,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Doc mirrors cmd/benchjson's committed JSON shape.
type Doc struct {
	Note    string   `json:"note"`
	Results []Result `json:"results"`
}

// Tolerances bound how far a fresh result may drift above the baseline
// before the gate fails.
type Tolerances struct {
	NsTol       float64 // relative ns/op headroom; negative disables the check
	AllocsTol   float64 // relative allocs/op headroom
	AllocsSlack int64   // absolute allocs/op headroom on top of AllocsTol
	BytesTol    float64 // relative bytes/op headroom; negative disables
	BytesSlack  int64   // absolute bytes/op headroom on top of BytesTol
}

// Verdict is one benchmark's comparison outcome.
type Verdict struct {
	Key      string
	Base     *Result
	Fresh    *Result
	Failures []string
}

// OK reports whether the benchmark passed the gate (missing counterparts
// pass by definition).
func (v *Verdict) OK() bool { return len(v.Failures) == 0 }

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	baseline := fs.String("baseline", "BENCH_sim.json", "committed baseline JSON")
	tol := Tolerances{}
	fs.Float64Var(&tol.NsTol, "ns-tol", 0.75, "allowed relative ns/op regression (0.75 = +75%); negative disables")
	fs.Float64Var(&tol.AllocsTol, "allocs-tol", 0.05, "allowed relative allocs/op regression")
	fs.Int64Var(&tol.AllocsSlack, "allocs-slack", 3, "absolute allocs/op slack on top of -allocs-tol")
	fs.Float64Var(&tol.BytesTol, "bytes-tol", 0.30, "allowed relative bytes/op regression; negative disables")
	fs.Int64Var(&tol.BytesSlack, "bytes-slack", 4096, "absolute bytes/op slack on top of -bytes-tol")
	if err := fs.Parse(args); err != nil {
		return err
	}

	base, err := readDoc(*baseline)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var fresh Doc
	switch fs.NArg() {
	case 0:
		if err := json.NewDecoder(stdin).Decode(&fresh); err != nil {
			return fmt.Errorf("fresh results on stdin: %w", err)
		}
	case 1:
		fresh, err = readDoc(fs.Arg(0))
		if err != nil {
			return fmt.Errorf("fresh results: %w", err)
		}
	default:
		return fmt.Errorf("at most one fresh-results file, got %d args", fs.NArg())
	}

	verdicts := Compare(base.Results, fresh.Results, tol)
	failed := Report(stdout, verdicts)
	if failed > 0 {
		return fmt.Errorf("%d benchmark(s) regressed past tolerance", failed)
	}
	return nil
}

func readDoc(path string) (Doc, error) {
	var d Doc
	b, err := os.ReadFile(path)
	if err != nil {
		return d, err
	}
	if err := json.Unmarshal(b, &d); err != nil {
		return d, err
	}
	return d, nil
}

func key(r Result) string {
	if r.Package == "" {
		return r.Name
	}
	return r.Package + "." + r.Name
}

// Compare joins baseline and fresh results by package-qualified name and
// applies the tolerances. Output is sorted by key, so the report (and the
// exit code) is independent of input order.
func Compare(base, fresh []Result, tol Tolerances) []Verdict {
	baseBy := make(map[string]*Result, len(base))
	for i := range base {
		baseBy[key(base[i])] = &base[i]
	}
	freshBy := make(map[string]*Result, len(fresh))
	for i := range fresh {
		freshBy[key(fresh[i])] = &fresh[i]
	}
	keys := make([]string, 0, len(baseBy)+len(freshBy))
	for k := range baseBy { // key extraction: sorted below
		keys = append(keys, k)
	}
	for k := range freshBy { // key extraction: sorted below
		if _, ok := baseBy[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)

	out := make([]Verdict, 0, len(keys))
	for _, k := range keys {
		v := Verdict{Key: k, Base: baseBy[k], Fresh: freshBy[k]}
		if v.Base != nil && v.Fresh != nil {
			v.Failures = check(v.Base, v.Fresh, tol)
		}
		out = append(out, v)
	}
	return out
}

func check(base, fresh *Result, tol Tolerances) []string {
	var fails []string
	if tol.NsTol >= 0 && fresh.NsPerOp > base.NsPerOp*(1+tol.NsTol) {
		fails = append(fails, fmt.Sprintf("ns/op %.4g > %.4g (+%.0f%% tolerance)",
			fresh.NsPerOp, base.NsPerOp, tol.NsTol*100))
	}
	// cmd/benchjson omits B/op and allocs/op fields when they are zero, so
	// a zero baseline means "was zero-alloc" — and must stay that way
	// (modulo the constant slack).
	allocLimit := base.AllocsPerOp + int64(float64(base.AllocsPerOp)*tol.AllocsTol) + tol.AllocsSlack
	if fresh.AllocsPerOp > allocLimit {
		fails = append(fails, fmt.Sprintf("allocs/op %d > limit %d (baseline %d)",
			fresh.AllocsPerOp, allocLimit, base.AllocsPerOp))
	}
	if tol.BytesTol >= 0 {
		byteLimit := base.BytesPerOp + int64(float64(base.BytesPerOp)*tol.BytesTol) + tol.BytesSlack
		if fresh.BytesPerOp > byteLimit {
			fails = append(fails, fmt.Sprintf("bytes/op %d > limit %d (baseline %d)",
				fresh.BytesPerOp, byteLimit, base.BytesPerOp))
		}
	}
	return fails
}

// Report renders the comparison table and returns the number of failed
// benchmarks.
func Report(w io.Writer, verdicts []Verdict) int {
	failed := 0
	fmt.Fprintf(w, "%-60s %15s %15s %8s %12s %12s  %s\n",
		"benchmark", "base ns/op", "fresh ns/op", "Δns", "base allocs", "fresh allocs", "verdict")
	for i := range verdicts {
		v := &verdicts[i]
		switch {
		case v.Base == nil:
			fmt.Fprintf(w, "%-60s %15s %15.4g %8s %12s %12d  new (no baseline)\n",
				v.Key, "-", v.Fresh.NsPerOp, "-", "-", v.Fresh.AllocsPerOp)
		case v.Fresh == nil:
			fmt.Fprintf(w, "%-60s %15.4g %15s %8s %12d %12s  not run\n",
				v.Key, v.Base.NsPerOp, "-", "-", v.Base.AllocsPerOp, "-")
		default:
			verdict := "ok"
			if !v.OK() {
				verdict = "FAIL: " + v.Failures[0]
				for _, f := range v.Failures[1:] {
					verdict += "; " + f
				}
				failed++
			}
			fmt.Fprintf(w, "%-60s %15.4g %15.4g %+7.1f%% %12d %12d  %s\n",
				v.Key, v.Base.NsPerOp, v.Fresh.NsPerOp,
				100*(v.Fresh.NsPerOp-v.Base.NsPerOp)/v.Base.NsPerOp,
				v.Base.AllocsPerOp, v.Fresh.AllocsPerOp, verdict)
		}
	}
	return failed
}
