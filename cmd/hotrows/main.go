// Command hotrows prints a hot-row census for one workload across a set of
// memory mappings — the quickest way to see the paper's core effect: the
// line-to-row mapping, not the access pattern, decides how many rows cross
// the Rowhammer danger threshold.
//
// Usage:
//
//	hotrows -workload mcf
//	hotrows -workload lbm -mappings coffeelake,rubixs-gs1 -scale 0.5
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rubix/internal/geom"
	"rubix/internal/sim"
)

func main() {
	var (
		wl       = flag.String("workload", "mcf", "SPEC workload, mixN, or stream-* kernel")
		mapsFlag = flag.String("mappings", "coffeelake,skylake,mop,rubixs-gs4,rubixs-gs1,rubixd-gs4", "comma-separated mappings")
		scale    = flag.Float64("scale", 1.0, "fraction of the 250M-instruction budget")
		cores    = flag.Int("cores", 4, "number of cores")
		seed     = flag.Uint64("seed", 42, "random seed")
	)
	flag.Parse()

	g := geom.DDR4_16GB()
	fmt.Printf("Hot-row census: %dx %s on %s\n\n", *cores, *wl, g)
	fmt.Printf("%-18s %12s %10s %10s %8s %8s\n",
		"mapping", "uniq rows/w", "ACT-64+", "ACT-512+", "RBHR", "IPC")

	for _, m := range strings.Split(*mapsFlag, ",") {
		profiles, err := sim.ResolveWorkload(*wl, *cores, g, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hotrows:", err)
			os.Exit(1)
		}
		res, err := sim.Run(sim.Config{
			Geometry:       g,
			TRH:            128,
			MappingName:    m,
			MitigationName: "none",
			Workloads:      profiles,
			InstrPerCore:   uint64(250e6 * *scale),
			Seed:           *seed,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "hotrows:", err)
			os.Exit(1)
		}
		fmt.Printf("%-18s %12.0f %10d %10d %7.1f%% %8.3f\n",
			m, res.DRAM.MeanUniqueRows(), res.DRAM.TotalHot64(), res.DRAM.TotalHot512(),
			100*res.HitRate(), res.MeanIPC)
	}
}
