// Command tracegen records a workload's memory-access trace to a file, or
// inspects an existing trace. Traces replay through the simulator exactly
// like the live generator (see internal/trace), which makes experiments
// portable and lets external tools consume the same streams.
//
// Usage:
//
//	tracegen -workload mcf -n 1000000 -o mcf.rbtr
//	tracegen -dump mcf.rbtr
//	rubixsim ... (traces can be wired in programmatically via rubix.Run)
package main

import (
	"flag"
	"fmt"
	"os"

	"rubix/internal/geom"
	"rubix/internal/sim"
	"rubix/internal/trace"
)

func main() {
	var (
		wl   = flag.String("workload", "gcc", "SPEC workload, mixN, or stream-* kernel")
		n    = flag.Int("n", 1_000_000, "accesses to record")
		out  = flag.String("o", "", "output trace file (required unless -dump)")
		dump = flag.String("dump", "", "inspect an existing trace instead of recording")
		seed = flag.Uint64("seed", 42, "generator seed")
	)
	flag.Parse()

	if *dump != "" {
		if err := dumpTrace(*dump); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		return
	}
	if *out == "" {
		fmt.Fprintln(os.Stderr, "tracegen: -o is required")
		os.Exit(2)
	}

	g := geom.DDR4_16GB()
	profiles, err := sim.ResolveWorkload(*wl, 1, g, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := trace.Record(f, profiles[0].Gen, *n); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	fmt.Printf("recorded %d accesses of %s to %s\n", *n, *wl, *out)
}

func dumpTrace(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(path, f)
	if err != nil {
		return err
	}
	var (
		count    uint64
		bursts   uint64
		inBurst  uint64
		min, max uint64
	)
	min = ^uint64(0)
	for !r.Wrapped() {
		line := r.Next()
		if r.Wrapped() {
			break
		}
		count++
		if line < min {
			min = line
		}
		if line > max {
			max = line
		}
		if r.InBurst() {
			inBurst++
		} else {
			bursts++
		}
		if count >= 1<<34 {
			return fmt.Errorf("trace implausibly long, aborting")
		}
	}
	if count == 0 {
		fmt.Println("empty trace")
		return nil
	}
	fmt.Printf("%s: %d accesses, %d bursts (mean length %.1f), line range [%#x, %#x] (%.1f MB footprint span)\n",
		path, count, bursts, float64(count)/float64(max64(bursts, 1)),
		min, max, float64(max-min)*64/1e6)
	return nil
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
