// Command rubixd serves the experiment harness over HTTP: clients POST
// RunSpecs (singly to /run, in bulk to /batch) and receive canonical
// encoded Results. Concurrent duplicate requests coalesce onto one
// simulation, and with -store every successful result is persisted to a
// content-addressed directory, so an identical sweep after a restart is
// served without simulating anything.
//
// Examples:
//
//	rubixd -addr localhost:8080 -store /var/lib/rubixd
//	rubixd -scale 0.1 -shards 1 -batch 16 -batch-wait 100ms
//
//	curl -d '{"Workload":"mcf","Mapping":"rubixs-gs4","Mitigation":"aqua","TRH":128}' localhost:8080/run
//	curl -d '{"specs":[...]}' localhost:8080/batch
//	curl localhost:8080/metrics?format=json
//
// SIGINT/SIGTERM shut the service down gracefully: the listener stops
// accepting, in-flight requests and batches run to completion (persisting
// their results), and only then does the process exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rubix/internal/server"
	"rubix/internal/sim"
	"rubix/internal/store"
)

func main() {
	var (
		addr      = flag.String("addr", "localhost:8080", "listen address")
		storeDir  = flag.String("store", "", "persist results to this content-addressed directory (empty = memory only)")
		scale     = flag.Float64("scale", 1.0, "fraction of the 250M-instruction budget per run")
		cores     = flag.Int("cores", 4, "cores per simulation")
		seed      = flag.Uint64("seed", 42, "random seed (part of the store key)")
		shards    = flag.Int("shards", 0, "channel-sharded event loops per run: 0 = auto, 1 = serial")
		parallel  = flag.Int("parallel", 0, "max concurrent simulations per batch (0 = NumCPU)")
		batch     = flag.Int("batch", 8, "batch flush threshold")
		batchWait = flag.Duration("batch-wait", 50*time.Millisecond, "max time a partial batch waits before flushing")
		quiet     = flag.Bool("quiet", false, "suppress per-run log lines")
	)
	flag.Parse()
	if *shards < 0 || *shards&(*shards-1) != 0 {
		fmt.Fprintf(os.Stderr, "rubixd: -shards %d: want 0 (auto) or a power of two\n", *shards)
		os.Exit(2)
	}

	cfg := server.Config{
		Sim: sim.Options{
			Scale:   *scale,
			Cores:   *cores,
			Seed:    *seed,
			SeedSet: true,
			Shards:  *shards,
		},
		BatchSize:   *batch,
		BatchWait:   *batchWait,
		Parallelism: *parallel,
	}
	if !*quiet {
		cfg.Sim.OnRunDone = func(spec sim.RunSpec, _ *sim.Result, wallNs int64) {
			fmt.Fprintf(os.Stderr, "rubixd: simulated %s in %.2fs\n", spec, float64(wallNs)/1e9)
		}
		cfg.Sim.OnRunErr = func(spec sim.RunSpec, err error, wallNs int64) {
			fmt.Fprintf(os.Stderr, "rubixd: FAILED %s after %.2fs: %v\n", spec, float64(wallNs)/1e9, err)
		}
		cfg.Sim.OnStoreHit = func(spec sim.RunSpec) {
			fmt.Fprintf(os.Stderr, "rubixd: store hit for %s\n", spec)
		}
	}
	// Store errors are always reported: the run still succeeds, but an
	// operator who configured -store wants to know persistence is broken.
	cfg.Sim.OnStoreErr = func(spec sim.RunSpec, err error) {
		fmt.Fprintf(os.Stderr, "rubixd: store error for %s: %v\n", spec, err)
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rubixd: opening store:", err)
			os.Exit(1)
		}
		cfg.Store = st
		if n, err := st.Len(); err == nil {
			fmt.Fprintf(os.Stderr, "rubixd: result store at %s (%d entries)\n", st.Dir(), n)
		} else {
			fmt.Fprintf(os.Stderr, "rubixd: result store at %s (census failed: %v)\n", st.Dir(), err)
		}
	}

	svc, err := server.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rubixd:", err)
		os.Exit(1)
	}
	httpSrv := server.NewHTTPServer(*addr, svc)
	errc, err := server.Start(httpSrv)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rubixd: listen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "rubixd: serving on http://%s\n", httpSrv.Addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		// Graceful shutdown: stop accepting, let in-flight requests finish
		// (they hold batcher response channels), then drain the batcher so
		// every accepted run completes and persists.
		fmt.Fprintln(os.Stderr, "rubixd: shutting down")
		if err := server.Shutdown(httpSrv, 30*time.Second); err != nil {
			fmt.Fprintln(os.Stderr, "rubixd: shutdown:", err)
		}
		svc.Close()
		if err := <-errc; err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "rubixd: serve:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "rubixd: drained, exiting")
	case err := <-errc:
		// The serve loop died on its own — a real error, not a shutdown.
		svc.Close()
		fmt.Fprintln(os.Stderr, "rubixd: serve:", err)
		os.Exit(1)
	}
}
