package rubix_test

import (
	"testing"

	"rubix"
)

func TestPublicQuickstart(t *testing.T) {
	g := rubix.DefaultGeometry()
	profiles, err := rubix.ResolveWorkload("gcc", 4, g, 42)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rubix.Run(rubix.Config{
		Geometry:       g,
		TRH:            128,
		MappingName:    "rubixs-gs4",
		MitigationName: "aqua",
		Workloads:      profiles,
		InstrPerCore:   5_000_000,
		Seed:           42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanIPC <= 0 {
		t.Fatal("no progress")
	}
	if res.DRAM.TotalOverTRH() != 0 {
		t.Fatal("security watchdog violation through the public API")
	}
}

func TestPublicMapperConstruction(t *testing.T) {
	g := rubix.DefaultGeometry()
	rs, err := rubix.NewRubixS(g, 4, rubix.KeyFromSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	line := uint64(12345)
	if rs.Unmap(rs.Map(line)) != line {
		t.Fatal("Rubix-S round trip failed via public API")
	}
	rd, err := rubix.NewRubixD(g, rubix.RubixDConfig{GangSize: 2, RemapRate: 0.01, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rd.Unmap(rd.Map(line)) != line {
		t.Fatal("Rubix-D round trip failed via public API")
	}
	if _, err := rubix.NewMapper("coffeelake", g, 0); err != nil {
		t.Fatal(err)
	}
}

func TestPublicWorkloadList(t *testing.T) {
	names := rubix.SpecWorkloads()
	if len(names) != 18 {
		t.Fatalf("workloads = %d, want 18", len(names))
	}
	for _, n := range names {
		if _, err := rubix.ResolveWorkload(n, 2, rubix.DefaultGeometry(), 1); err != nil {
			t.Errorf("%s: %v", n, err)
		}
	}
}

func TestGeometryHelpers(t *testing.T) {
	if rubix.DefaultGeometry().TotalBytes() != 16<<30 {
		t.Fatal("default geometry is not 16 GB")
	}
	if rubix.Geometry2Ch().Channels != 2 || rubix.Geometry4Ch().Channels != 4 {
		t.Fatal("multi-channel helpers wrong")
	}
	if rubix.DDR4Timing().TRC != 45 {
		t.Fatal("timing helper wrong")
	}
}
