# Convenience targets mirroring the CI jobs (.github/workflows/ci.yml).

.PHONY: all build test race race-concurrency lint lint-audit ci profile bench bench-mapping bench-shards benchdiff check-paranoid check-replay smoke-rubixd

all: build test

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# The concurrency hammer mirror of CI's race matrix: the packages where the
# mutexes live, twice, so interleavings get a second roll of the dice.
race-concurrency:
	go test -race -count=2 ./internal/sim/... ./internal/metrics/... ./internal/check/...

# The full local gate: vet plus the project invariants suite (determinism,
# bitwidth, seedflow, panicpolicy, observereffect, addrwidth, errdiscard,
# lockdiscipline, goroutineescape, goroutineleak, waitgroup, and the
# domain/unit analyzers addrspace, unitflow, hotalloc — see internal/lint).
# rubixlint -fix applies the suite's suggested fixes, including the
# addrspace `// addr:` annotation autofix.
lint:
	go vet ./...
	go run ./cmd/rubixlint ./...

# Guard hygiene: every //lint:allow in the tree must still suppress a live
# finding, carry a justification, and name a registered analyzer. Fails on
# stale guards so suppressions rot is caught at review time.
lint-audit:
	go run ./cmd/rubixlint -allow-audit ./...

ci: build test race lint lint-audit

# Refresh the committed benchmark baseline for the sim hot path
# (mapping/cipher/DRAM/core micro-benchmarks plus the end-to-end run).
# The JSON is a reference point for eyeballing regressions, not a CI gate —
# absolute numbers depend on the machine.
bench:
	go test -bench . -benchmem -run '^$$' ./... | go run ./cmd/benchjson > BENCH_sim.json

# Just the translation microbenchmarks: scalar and batched mapper surfaces
# and the K-Cipher ladder. Quick feedback when touching mapping/cipher code
# without re-running the end-to-end sweeps.
bench-mapping:
	go test -bench 'Map|Cipher|Encrypt|Decrypt' -benchmem -run '^$$' \
		./internal/mapping ./internal/kcipher ./internal/core

# Parallel-in-run scaling: the same 4-channel configuration at 1, 2, and 4
# channel shards. Compare ns/op across the three — on an N-core host the
# Shards4 run should approach the serial time divided by min(4, N). On a
# single-core host the sharded runs are SLOWER than serial (they pay the
# routing and rendezvous cost with no parallel payback); the mean_ipc
# metric must be identical across all three regardless — that is the
# determinism contract, visible even in the benchmark output.
bench-shards:
	go test -bench ShardScaling -benchmem -run '^$$' .

# Regression gate against the committed baseline: generous ns/op tolerance
# (wall time is machine-dependent), strict allocs/op (allocation counts are
# deterministic). -benchtime 100ms keeps the fresh run bounded; per-op
# numbers stay comparable to the 1s baseline.
benchdiff:
	go test -bench . -benchmem -benchtime 100ms -run '^$$' ./... \
		| go run ./cmd/benchjson | go run ./cmd/benchdiff -baseline BENCH_sim.json

# Paranoid-mode gate: the Figure-3 smoke sweep with the runtime invariant
# checker attached to every simulation (sampled bijection spot-checks, ACT
# conservation, refresh/tRC clocks, Rubix-D epoch completeness). Any
# violation fails the run.
check-paranoid:
	go run ./cmd/experiments -exp fig3 -scale 0.004 -workloads mcf,xz \
		-mixes=false -check paranoid

# Differential-replay gate: metamorphic relations across whole runs.
# mcf/coffeelake exercises seed-invariance + scale-linearity on a
# deterministic mapping; mcf/rubixs-gs4 exercises the cipher-equivalence
# relation (and correctly skips seed-invariance for a seed-keyed mapping).
# -scale 0.01 is calibrated: smaller runs have too few accesses for the
# default 5% drift tolerance (see internal/check.Tolerance).
check-replay:
	go run ./cmd/rubixsim -workload mcf -mapping coffeelake -mitigation none \
		-trh 128 -scale 0.01 -cores 2 -check replay
	go run ./cmd/rubixsim -workload mcf -mapping rubixs-gs4 -mitigation none \
		-trh 128 -scale 0.01 -cores 2 -check replay

# End-to-end sweep-service gate: start rubixd with a persistent store, run
# a small batched sweep, SIGTERM-drain it, restart on the same store, and
# assert the identical sweep is served byte-for-byte with ZERO fresh
# simulations (counters read from /metrics?format=json). Needs curl + jq.
smoke-rubixd:
	bash scripts/smoke_rubixd.sh

# Profile a mid-size hot configuration: CPU profile and metrics snapshot
# land in results/, and a live pprof + /metrics endpoint serves on :6060
# for the duration of the run (`go tool pprof results/cpu.pprof`).
profile:
	mkdir -p results
	go run ./cmd/rubixsim -workload mcf -mapping coffeelake -mitigation aqua \
		-trh 128 -scale 0.2 -pprof localhost:6060 \
		-cpuprofile results/cpu.pprof -metrics-json results/metrics.json -metrics
