# Convenience targets mirroring the CI jobs (.github/workflows/ci.yml).

.PHONY: all build test race lint ci profile

all: build test

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# The full local gate: vet plus the project invariants suite
# (determinism, bitwidth, seedflow, panicpolicy — see internal/lint).
lint:
	go vet ./...
	go run ./cmd/rubixlint ./...

ci: build test race lint

# Profile a mid-size hot configuration: CPU profile and metrics snapshot
# land in results/, and a live pprof + /metrics endpoint serves on :6060
# for the duration of the run (`go tool pprof results/cpu.pprof`).
profile:
	mkdir -p results
	go run ./cmd/rubixsim -workload mcf -mapping coffeelake -mitigation aqua \
		-trh 128 -scale 0.2 -pprof localhost:6060 \
		-cpuprofile results/cpu.pprof -metrics-json results/metrics.json -metrics
