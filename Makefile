# Convenience targets mirroring the CI jobs (.github/workflows/ci.yml).

.PHONY: all build test race lint ci

all: build test

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# The full local gate: vet plus the project invariants suite
# (determinism, bitwidth, seedflow, panicpolicy — see internal/lint).
lint:
	go vet ./...
	go run ./cmd/rubixlint ./...

ci: build test race lint
