# Convenience targets mirroring the CI jobs (.github/workflows/ci.yml).

.PHONY: all build test race lint ci profile bench benchdiff

all: build test

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# The full local gate: vet plus the project invariants suite (determinism,
# bitwidth, seedflow, panicpolicy, observereffect, addrwidth, errdiscard —
# see internal/lint). rubixlint -fix applies the suite's suggested fixes.
lint:
	go vet ./...
	go run ./cmd/rubixlint ./...

ci: build test race lint

# Refresh the committed benchmark baseline for the sim hot path
# (mapping/cipher/DRAM/core micro-benchmarks plus the end-to-end run).
# The JSON is a reference point for eyeballing regressions, not a CI gate —
# absolute numbers depend on the machine.
bench:
	go test -bench . -benchmem -run '^$$' ./... | go run ./cmd/benchjson > BENCH_sim.json

# Regression gate against the committed baseline: generous ns/op tolerance
# (wall time is machine-dependent), strict allocs/op (allocation counts are
# deterministic). -benchtime 100ms keeps the fresh run bounded; per-op
# numbers stay comparable to the 1s baseline.
benchdiff:
	go test -bench . -benchmem -benchtime 100ms -run '^$$' ./... \
		| go run ./cmd/benchjson | go run ./cmd/benchdiff -baseline BENCH_sim.json

# Profile a mid-size hot configuration: CPU profile and metrics snapshot
# land in results/, and a live pprof + /metrics endpoint serves on :6060
# for the duration of the run (`go tool pprof results/cpu.pprof`).
profile:
	mkdir -p results
	go run ./cmd/rubixsim -workload mcf -mapping coffeelake -mitigation aqua \
		-trh 128 -scale 0.2 -pprof localhost:6060 \
		-cpuprofile results/cpu.pprof -metrics-json results/metrics.json -metrics
