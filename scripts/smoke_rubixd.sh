#!/usr/bin/env bash
# End-to-end smoke test for the rubixd sweep service, mirroring what an
# operator relies on: cold sweep simulates and persists, SIGTERM drains
# gracefully, and a warm restart serves the identical sweep entirely from
# the content-addressed store — byte-identical, zero fresh simulations.
#
# Used by `make smoke-rubixd` and the CI rubixd-smoke job. Needs curl + jq.
set -euo pipefail

ADDR="127.0.0.1:${RUBIXD_SMOKE_PORT:-18931}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

BATCH='{"specs":[
  {"Workload":"xz","Mapping":"coffeelake","Mitigation":"none","TRH":128},
  {"Workload":"xz","Mapping":"rubixs-gs4","Mitigation":"aqua","TRH":128}
]}'

go build -o "$WORK/rubixd" ./cmd/rubixd

wait_healthy() {
  for _ in $(seq 1 100); do
    if curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "rubixd never became healthy" >&2
  return 1
}

start_server() { # $1 = log file
  "$WORK/rubixd" -addr "$ADDR" -store "$WORK/results" -scale 0.004 -shards 1 \
    2>"$WORK/$1" &
  SERVER_PID=$!
  wait_healthy
}

stop_server() { # graceful SIGTERM shutdown must exit 0
  kill -TERM "$SERVER_PID"
  wait "$SERVER_PID"
}

echo "--- cold sweep: fresh simulations, persisted to the store"
start_server cold.log
curl -fsS -d "$BATCH" "http://$ADDR/batch" >"$WORK/cold.json"
jq -e '[.results[] | select(.error == null and .result != null)] | length == 2' \
  "$WORK/cold.json" >/dev/null
curl -fsS "http://$ADDR/metrics?format=json" >"$WORK/cold-metrics.json"
jq -e '.counters.rubixd_sims_fresh == 2 and .counters.rubixd_store_hits == 0' \
  "$WORK/cold-metrics.json" >/dev/null
stop_server
echo "--- graceful shutdown OK"

echo "--- warm restart: same store directory, same sweep"
start_server warm.log
curl -fsS -d "$BATCH" "http://$ADDR/batch" >"$WORK/warm.json"
curl -fsS "http://$ADDR/metrics?format=json" >"$WORK/warm-metrics.json"
# The whole point of the store: the warm server must simulate NOTHING.
jq -e '(.counters.rubixd_sims_fresh // 1) == 0 and .counters.rubixd_store_hits >= 2' \
  "$WORK/warm-metrics.json" >/dev/null
cmp "$WORK/cold.json" "$WORK/warm.json"
echo "--- warm sweep byte-identical to cold, zero fresh simulations"
stop_server
echo "--- graceful shutdown OK"

echo "rubixd smoke: PASS"
